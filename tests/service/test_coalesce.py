"""Request coalescing: merge windows, per-φ outcomes, per-key serialization."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.admission import ShedRequestError
from repro.service.coalesce import Coalescer


def run(coro):
    return asyncio.run(coro)


def make_runner(calls, delay=0.0, outcomes=None):
    """A runner that records merged φ tuples and answers ``phi -> f"w{phi}"``."""

    async def runner(merged):
        calls.append(merged)
        if delay:
            await asyncio.sleep(delay)
        mapping = {phi: (outcomes or {}).get(phi, f"w{phi}") for phi in merged}
        return mapping, 0.01, 7

    return runner


async def noop_admit():
    return 0.0


def noop_release(_seconds):
    return None


class TestMerging:
    def test_single_request_runs_alone(self):
        async def scenario():
            coalescer = Coalescer()
            calls = []
            outcome = await coalescer.submit(
                "k", [0.5], noop_admit, noop_release, make_runner(calls)
            )
            assert outcome.outcomes == {0.5: "w0.5"}
            assert outcome.fan_in == 1
            assert outcome.checkpoints == 7
            assert calls == [(0.5,)]

        run(scenario())

    def test_requests_merge_while_leader_queued(self):
        async def scenario():
            coalescer = Coalescer()
            calls = []
            gate = asyncio.Event()

            async def blocking_admit():
                await gate.wait()
                return 0.1

            tasks = [
                asyncio.ensure_future(
                    coalescer.submit(
                        "k", [phi], blocking_admit, noop_release, make_runner(calls)
                    )
                )
                for phi in (0.25, 0.5, 0.75)
            ]
            await asyncio.sleep(0.01)  # all three join while admit blocks
            gate.set()
            outcomes = await asyncio.gather(*tasks)
            # One merged execution served all three callers.
            assert calls == [(0.25, 0.5, 0.75)]
            assert [o.fan_in for o in outcomes] == [3, 3, 3]
            # Each caller sees exactly its own φ.
            assert outcomes[0].outcomes == {0.25: "w0.25"}
            assert outcomes[1].outcomes == {0.5: "w0.5"}
            assert outcomes[2].outcomes == {0.75: "w0.75"}
            assert outcomes[0].queue_seconds == 0.1
            stats = coalescer.stats()
            assert stats["batches"] == 1
            assert stats["requests"] == 3
            assert stats["merged_requests"] == 2
            assert stats["max_fan_in"] == 3

        run(scenario())

    def test_duplicate_phis_executed_once(self):
        async def scenario():
            coalescer = Coalescer()
            calls = []
            gate = asyncio.Event()

            async def blocking_admit():
                await gate.wait()
                return 0.0

            tasks = [
                asyncio.ensure_future(
                    coalescer.submit(
                        "k", [0.5], blocking_admit, noop_release, make_runner(calls)
                    )
                )
                for _ in range(4)
            ]
            await asyncio.sleep(0.01)
            gate.set()
            outcomes = await asyncio.gather(*tasks)
            assert calls == [(0.5,)]  # one distinct φ despite four callers
            assert all(o.outcomes == {0.5: "w0.5"} for o in outcomes)

        run(scenario())

    def test_different_keys_do_not_merge(self):
        async def scenario():
            coalescer = Coalescer()
            calls = []
            await asyncio.gather(
                coalescer.submit("a", [0.5], noop_admit, noop_release, make_runner(calls)),
                coalescer.submit("b", [0.5], noop_admit, noop_release, make_runner(calls)),
            )
            assert len(calls) == 2

        run(scenario())


class TestOutcomePropagation:
    def test_per_phi_error_reaches_only_its_callers(self):
        async def scenario():
            coalescer = Coalescer()
            calls = []
            boom = ValueError("phi exploded")
            gate = asyncio.Event()

            async def blocking_admit():
                await gate.wait()
                return 0.0

            runner = make_runner(calls, outcomes={0.5: boom})
            ok_task = asyncio.ensure_future(
                coalescer.submit("k", [0.25], blocking_admit, noop_release, runner)
            )
            bad_task = asyncio.ensure_future(
                coalescer.submit("k", [0.5], blocking_admit, noop_release, runner)
            )
            await asyncio.sleep(0.01)
            gate.set()
            ok, bad = await asyncio.gather(ok_task, bad_task)
            assert ok.outcomes == {0.25: "w0.25"}  # untouched by the failure
            assert bad.outcomes[0.5] is boom

        run(scenario())

    def test_shed_propagates_to_every_merged_caller(self):
        async def scenario():
            coalescer = Coalescer()
            gate = asyncio.Event()

            async def shedding_admit():
                await gate.wait()
                raise ShedRequestError("queue full", 0.5)

            tasks = [
                asyncio.ensure_future(
                    coalescer.submit(
                        "k", [phi], shedding_admit, noop_release, make_runner([])
                    )
                )
                for phi in (0.25, 0.75)
            ]
            await asyncio.sleep(0.01)
            gate.set()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(r, ShedRequestError) for r in results)

        run(scenario())

    def test_runner_crash_fails_every_caller(self):
        async def scenario():
            coalescer = Coalescer()

            async def broken_runner(_merged):
                raise RuntimeError("engine died")

            with pytest.raises(RuntimeError):
                await coalescer.submit(
                    "k", [0.5], noop_admit, noop_release, broken_runner
                )

        run(scenario())


class TestSerialization:
    def test_same_key_batches_never_overlap(self):
        async def scenario():
            coalescer = Coalescer()
            running = 0
            peak = 0

            async def runner(merged):
                nonlocal running, peak
                running += 1
                peak = max(peak, running)
                await asyncio.sleep(0.02)
                running -= 1
                return {phi: "w" for phi in merged}, 0.0, 0

            await asyncio.gather(
                *(
                    coalescer.submit("k", [0.1 * i], noop_admit, noop_release, runner)
                    for i in range(1, 6)
                )
            )
            assert peak == 1  # per-key serialization held

        run(scenario())

    def test_distinct_keys_may_overlap(self):
        async def scenario():
            coalescer = Coalescer()
            running = 0
            peak = 0

            async def runner(merged):
                nonlocal running, peak
                running += 1
                peak = max(peak, running)
                await asyncio.sleep(0.02)
                running -= 1
                return {phi: "w" for phi in merged}, 0.0, 0

            await asyncio.gather(
                *(
                    coalescer.submit(f"k{i}", [0.5], noop_admit, noop_release, runner)
                    for i in range(4)
                )
            )
            assert peak > 1  # no cross-key serialization

        run(scenario())
