"""Admission control: slot bounds, queue depth/time limits, shed semantics."""

from __future__ import annotations

import asyncio

import pytest

from repro.service.admission import AdmissionController, ShedRequestError


def run(coro):
    return asyncio.run(coro)


class TestAcquireRelease:
    def test_admits_within_capacity(self):
        async def scenario():
            controller = AdmissionController(max_inflight=2)
            wait_a = await controller.acquire()
            wait_b = await controller.acquire()
            assert controller.inflight == 2
            return wait_a, wait_b

        wait_a, wait_b = run(scenario())
        assert wait_a >= 0.0 and wait_b >= 0.0

    def test_release_returns_slot(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, queue_timeout=0.2)
            await controller.acquire()
            controller.release(0.01)
            assert controller.inflight == 0
            await controller.acquire()  # does not shed: the slot came back
            assert controller.inflight == 1

        run(scenario())

    def test_release_feeds_latency_estimate(self):
        controller = AdmissionController()
        before = controller.stats()["avg_execute_seconds"]
        controller._inflight = 1
        controller.release(10.0)
        assert controller.stats()["avg_execute_seconds"] > before


class TestShedding:
    def test_queue_full_sheds_immediately(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queue=0, queue_timeout=5.0)
            await controller.acquire()
            started = asyncio.get_running_loop().time()
            with pytest.raises(ShedRequestError) as excinfo:
                await controller.acquire()
            elapsed = asyncio.get_running_loop().time() - started
            assert excinfo.value.reason == "queue full"
            assert excinfo.value.retry_after is not None
            assert elapsed < 1.0  # shed without waiting out the queue timeout
            assert controller.shed == 1

        run(scenario())

    def test_queue_timeout_sheds_waiter(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queue=4, queue_timeout=0.05)
            await controller.acquire()
            with pytest.raises(ShedRequestError) as excinfo:
                await controller.acquire()
            assert excinfo.value.reason == "queue timeout"
            assert controller.waiting == 0  # waiter fully cleaned up

        run(scenario())

    def test_retry_after_hint_is_clamped(self):
        controller = AdmissionController(max_inflight=2)
        assert 0.05 <= controller.retry_after_hint() <= 30.0
        controller._avg_execute = 10_000.0
        controller._waiting = 50
        assert controller.retry_after_hint() == 30.0

    def test_slot_not_leaked_after_timeout_shed(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queue=4, queue_timeout=0.05)
            await controller.acquire()
            with pytest.raises(ShedRequestError):
                await controller.acquire()
            controller.release()
            # The returned slot is the only one; acquiring must still work —
            # a leak here would make this hang until the queue timeout sheds.
            await controller.acquire()
            assert controller.inflight == 1

        run(scenario())


class TestClose:
    def test_close_sheds_queued_waiters(self):
        async def scenario():
            controller = AdmissionController(max_inflight=1, max_queue=4, queue_timeout=30.0)
            await controller.acquire()
            waiter = asyncio.ensure_future(controller.acquire())
            await asyncio.sleep(0.01)
            assert controller.waiting == 1
            controller.close()
            with pytest.raises(ShedRequestError) as excinfo:
                await waiter
            assert excinfo.value.reason == "shutting down"
            assert excinfo.value.retry_after is None

        run(scenario())

    def test_closed_controller_refuses_new_arrivals(self):
        async def scenario():
            controller = AdmissionController()
            controller.close()
            with pytest.raises(ShedRequestError) as excinfo:
                await controller.acquire()
            assert excinfo.value.reason == "shutting down"

        run(scenario())


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(max_queue=-1)
        with pytest.raises(ValueError):
            AdmissionController(queue_timeout=0.0)

    def test_stats_shape(self):
        stats = AdmissionController(max_inflight=3).stats()
        assert stats["max_inflight"] == 3
        assert stats["inflight"] == 0
        assert stats["closed"] is False
