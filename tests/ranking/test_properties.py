"""Property-based tests: subset-monotonicity and aggregation laws.

Subset-monotonicity (Section 2.2) is the assumption the generic pivot
algorithm relies on: if ``agg(L1) <= agg(L2)`` then
``agg(L ⊎ L1) <= agg(L ⊎ L2)`` for every multiset ``L``.  All rankings shipped
with the library must satisfy it.
"""

from hypothesis import given, strategies as st

from repro.ranking.lex import LexRanking
from repro.ranking.minmax import MaxRanking, MinRanking
from repro.ranking.sum import SumRanking

VARIABLES = ["v0", "v1", "v2", "v3"]

values = st.integers(min_value=-50, max_value=50)
assignments = st.dictionaries(st.sampled_from(VARIABLES), values)


def rankings():
    return [
        SumRanking(VARIABLES),
        MinRanking(VARIABLES),
        MaxRanking(VARIABLES),
        LexRanking(VARIABLES),
    ]


@given(weights1=st.lists(values, max_size=5), weights2=st.lists(values, max_size=5),
       extra=st.lists(values, max_size=5))
def test_subset_monotonicity_of_aggregates(weights1, weights2, extra):
    """agg(L1) <= agg(L2) implies agg(L + L1) <= agg(L + L2)."""
    for ranking in [SumRanking(["v0"]), MinRanking(["v0"]), MaxRanking(["v0"])]:
        lifted1 = [ranking.variable_weight("v0", v) for v in weights1]
        lifted2 = [ranking.variable_weight("v0", v) for v in weights2]
        lifted_extra = [ranking.variable_weight("v0", v) for v in extra]
        left, right = ranking.aggregate(lifted1), ranking.aggregate(lifted2)
        if left <= right:
            assert ranking.aggregate(lifted_extra + lifted1) <= ranking.aggregate(
                lifted_extra + lifted2
            )


@given(assignment=assignments, extra_var=st.sampled_from(VARIABLES), extra_value=values)
def test_adding_a_variable_is_combine(assignment, extra_var, extra_value):
    """weight(q ∪ {x:v}) == combine(weight(q), w_x(v)) when x is new."""
    for ranking in rankings():
        if extra_var in assignment:
            continue
        extended = dict(assignment)
        extended[extra_var] = extra_value
        expected = ranking.combine(
            ranking.weight_of(assignment), ranking.variable_weight(extra_var, extra_value)
        )
        assert ranking.weight_of(extended) == expected


@given(assignment=assignments)
def test_weight_between_infinities(assignment):
    """Every achievable weight lies strictly between the two sentinel bounds."""
    for ranking in rankings():
        weight = ranking.weight_of(assignment)
        assert ranking.minus_infinity() < ranking.plus_infinity()
        if assignment:
            assert weight <= ranking.plus_infinity()
            assert weight >= ranking.minus_infinity()


@given(values_list=st.lists(values, min_size=1, max_size=6))
def test_aggregate_matches_python_builtin(values_list):
    """SUM/MIN/MAX aggregates agree with Python's sum/min/max on floats."""
    floats = [float(v) for v in values_list]
    assert SumRanking(["v0"]).aggregate(floats) == sum(floats)
    assert MinRanking(["v0"]).aggregate(floats) == min(floats)
    assert MaxRanking(["v0"]).aggregate(floats) == max(floats)


@given(a=st.tuples(values, values), b=st.tuples(values, values), c=st.tuples(values, values))
def test_lex_combine_preserves_order(a, b, c):
    """Element-wise addition preserves lexicographic comparisons (the LEX
    instance of subset-monotonicity)."""
    ranking = LexRanking(["v0", "v1"])
    fa, fb, fc = (tuple(float(x) for x in t) for t in (a, b, c))
    if fa <= fb:
        assert ranking.combine(fc, fa) <= ranking.combine(fc, fb)
