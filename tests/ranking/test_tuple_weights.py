"""Unit tests for the attribute-to-tuple weight conversion (the μ mapping)."""

import pytest

from repro.exceptions import RankingError
from repro.query.atom import Atom
from repro.query.join_query import JoinQuery
from repro.ranking.sum import SumRanking
from repro.ranking.minmax import MinRanking
from repro.ranking.tuple_weights import (
    owned_variables,
    row_weight,
    variable_to_atom_assignment,
)


def query():
    return JoinQuery([Atom("R", ("x", "y")), Atom("S", ("y", "z"))])


class TestVariableToAtomAssignment:
    def test_each_variable_gets_one_owner(self):
        mu = variable_to_atom_assignment(query(), ["x", "y", "z"])
        assert set(mu) == {"x", "y", "z"}
        assert mu["x"] == 0
        assert mu["z"] == 1
        assert mu["y"] in (0, 1)

    def test_preferred_atoms_win(self):
        mu = variable_to_atom_assignment(query(), ["y"], preferred_atoms=[1])
        assert mu["y"] == 1
        mu = variable_to_atom_assignment(query(), ["y"], preferred_atoms=[0])
        assert mu["y"] == 0

    def test_unknown_variable_rejected(self):
        with pytest.raises(RankingError):
            variable_to_atom_assignment(query(), ["nope"])

    def test_owned_variables(self):
        mu = {"x": 0, "y": 0, "z": 1}
        assert owned_variables(mu, 0) == ["x", "y"]
        assert owned_variables(mu, 1) == ["z"]
        assert owned_variables(mu, 2) == []


class TestRowWeight:
    def test_sum_of_owned_variables_only(self):
        ranking = SumRanking(["x", "y", "z"])
        weight = row_weight(ranking, ("x", "y"), (3, 4), owned=["x"])
        assert weight == 3.0
        weight = row_weight(ranking, ("x", "y"), (3, 4), owned=["x", "y"])
        assert weight == 7.0

    def test_empty_ownership_gives_identity(self):
        ranking = SumRanking(["x"])
        assert row_weight(ranking, ("x", "y"), (3, 4), owned=[]) == 0.0

    def test_min_ranking(self):
        ranking = MinRanking(["x", "y"])
        assert row_weight(ranking, ("x", "y"), (3, 4), owned=["x", "y"]) == 3.0

    def test_custom_weight_function(self):
        ranking = SumRanking(["x"], weights={"x": lambda v: v * 10})
        assert row_weight(ranking, ("x", "y"), (3, 4), owned=["x"]) == 30.0

    def test_no_double_counting_across_atoms(self):
        """Splitting ownership across two atoms adds each variable once."""
        ranking = SumRanking(["x", "y", "z"])
        mu = variable_to_atom_assignment(query(), ["x", "y", "z"])
        total = 0.0
        rows = {0: (1, 2), 1: (2, 3)}  # R(x=1,y=2), S(y=2,z=3)
        for atom_index, atom in enumerate(query()):
            total += row_weight(
                ranking, atom.variables, rows[atom_index], owned_variables(mu, atom_index)
            )
        assert total == 6.0  # 1 + 2 + 3, with y counted exactly once
