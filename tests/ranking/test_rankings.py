"""Unit tests for the concrete ranking functions (SUM, MIN, MAX, LEX)."""

import math

import pytest

from repro.exceptions import RankingError
from repro.ranking.lex import LexRanking
from repro.ranking.minmax import MaxRanking, MinRanking
from repro.ranking.sum import SumRanking


class TestSumRanking:
    def test_full_assignment(self):
        ranking = SumRanking(["a", "b", "c"])
        assert ranking.weight_of({"a": 1, "b": 2, "c": 3}) == 6.0

    def test_partial_assignment_ignores_missing(self):
        ranking = SumRanking(["a", "b", "c"])
        assert ranking.weight_of({"a": 1, "c": 3}) == 4.0

    def test_non_weighted_variables_ignored(self):
        ranking = SumRanking(["a"])
        assert ranking.weight_of({"a": 1, "z": 100}) == 1.0

    def test_custom_weight_functions(self):
        ranking = SumRanking(["a", "b"], weights={"a": lambda v: 10 * v})
        assert ranking.weight_of({"a": 2, "b": 3}) == 23.0

    def test_identity_and_combine(self):
        ranking = SumRanking(["a"])
        assert ranking.identity == 0.0
        assert ranking.combine(2.0, 3.5) == 5.5
        assert ranking.aggregate([1.0, 2.0, 3.0]) == 6.0

    def test_infinities(self):
        ranking = SumRanking(["a"])
        assert ranking.plus_infinity() == math.inf
        assert ranking.minus_infinity() == -math.inf

    def test_is_full_sum(self):
        ranking = SumRanking(["a", "b"])
        assert ranking.is_full_sum({"a", "b"})
        assert not ranking.is_full_sum({"a", "b", "c"})

    def test_validate_for(self):
        ranking = SumRanking(["a", "missing"])
        with pytest.raises(RankingError):
            ranking.validate_for({"a", "b"})

    def test_duplicate_variables_rejected(self):
        with pytest.raises(RankingError):
            SumRanking(["a", "a"])

    def test_empty_variables_rejected(self):
        with pytest.raises(RankingError):
            SumRanking([])

    def test_unknown_weight_function_rejected(self):
        with pytest.raises(RankingError):
            SumRanking(["a"], weights={"b": lambda v: v})

    def test_describe(self):
        assert SumRanking(["a", "b"]).describe() == "SUM(a, b)"


class TestMinMaxRanking:
    def test_min(self):
        ranking = MinRanking(["a", "b", "c"])
        assert ranking.weight_of({"a": 5, "b": 2, "c": 9}) == 2.0

    def test_max(self):
        ranking = MaxRanking(["a", "b", "c"])
        assert ranking.weight_of({"a": 5, "b": 2, "c": 9}) == 9.0

    def test_partial_assignments(self):
        assert MinRanking(["a", "b"]).weight_of({"a": 5}) == 5.0
        assert MaxRanking(["a", "b"]).weight_of({"b": -2}) == -2.0

    def test_identities_are_neutral(self):
        assert MinRanking(["a"]).identity == math.inf
        assert MaxRanking(["a"]).identity == -math.inf

    def test_weight_functions(self):
        ranking = MaxRanking(["a", "b"], weights={"b": lambda v: -v})
        assert ranking.weight_of({"a": 1, "b": 5}) == 1.0

    def test_combine(self):
        assert MinRanking(["a"]).combine(3.0, 4.0) == 3.0
        assert MaxRanking(["a"]).combine(3.0, 4.0) == 4.0


class TestLexRanking:
    def test_full_assignment(self):
        ranking = LexRanking(["a", "b"])
        assert ranking.weight_of({"a": 2, "b": 9}) == (2.0, 9.0)

    def test_partial_assignment_pads_with_zero(self):
        ranking = LexRanking(["a", "b"])
        assert ranking.weight_of({"b": 9}) == (0.0, 9.0)

    def test_priority_order_matters(self):
        ranking = LexRanking(["b", "a"])
        assert ranking.weight_of({"a": 2, "b": 9}) == (9.0, 2.0)

    def test_comparison_is_lexicographic(self):
        ranking = LexRanking(["a", "b"])
        small = ranking.weight_of({"a": 1, "b": 100})
        large = ranking.weight_of({"a": 2, "b": 0})
        assert small < large

    def test_key_functions(self):
        ranking = LexRanking(["a"], keys={"a": lambda v: -v})
        assert ranking.weight_of({"a": 3}) == (-3.0,)

    def test_identity_and_infinities(self):
        ranking = LexRanking(["a", "b"])
        assert ranking.identity == (0.0, 0.0)
        assert ranking.plus_infinity() > ranking.weight_of({"a": 1e9, "b": 1e9})
        assert ranking.minus_infinity() < ranking.weight_of({"a": -1e9, "b": -1e9})

    def test_combine_elementwise(self):
        ranking = LexRanking(["a", "b"])
        assert ranking.combine((1.0, 2.0), (3.0, 4.0)) == (4.0, 6.0)

    def test_arity(self):
        assert LexRanking(["a", "b", "c"]).arity == 3
