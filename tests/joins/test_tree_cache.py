"""Tests for the shared materialized-tree cache (repro.joins.tree_cache)."""

from __future__ import annotations

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.counting import count_answers
from repro.joins.tree_cache import TreeCache, database_fingerprint
from repro.query.atom import Atom
from repro.query.join_query import JoinQuery


@pytest.fixture
def pair():
    query = JoinQuery([Atom("R", ("x", "y")), Atom("S", ("y", "z"))])
    db = Database(
        [
            Relation("R", ("x", "y"), [(1, 1), (2, 2)]),
            Relation("S", ("y", "z"), [(1, 10), (2, 20), (2, 30)]),
        ]
    )
    return query, db


def test_same_pair_returns_same_tree(pair):
    query, db = pair
    cache = TreeCache()
    first = cache.get(query, db)
    second = cache.get(query, db)
    assert first is second
    assert cache.hits == 1
    assert cache.misses == 1


def test_distinct_databases_get_distinct_trees(pair):
    query, db = pair
    cache = TreeCache()
    other = db.copy()
    assert cache.get(query, db) is not cache.get(query, other)
    assert cache.misses == 2


def test_mutated_relation_invalidates_tree(pair):
    query, db = pair
    cache = TreeCache()
    tree = cache.get(query, db)
    assert count_answers(query, db, tree=tree) == 3
    db["S"].add((1, 40))
    fresh = cache.get(query, db)
    assert fresh is not tree
    assert count_answers(query, db, tree=fresh) == 4


def test_replaced_relation_invalidates_tree(pair):
    query, db = pair
    cache = TreeCache()
    tree = cache.get(query, db)
    db.replace(Relation("S", ("y", "z"), [(1, 10)]))
    fresh = cache.get(query, db)
    assert fresh is not tree
    assert count_answers(query, db, tree=fresh) == 1


def test_replaced_relation_id_recycling_not_served_stale(pair):
    """Regression: the entry must pin the fingerprinted relation objects.
    Without that, a relation dropped by ``replace`` can be freed and a new
    relation can reuse its id at version 0, aliasing the stale fingerprint
    (CPython recycles ids of same-sized objects eagerly)."""
    import gc

    query, db = pair
    cache = TreeCache()
    cache.get(query, db)
    db.replace(Relation("S", ("y", "z"), [(1, 10)]))
    gc.collect()
    db.replace(Relation("S", ("y", "z"), [(1, 10), (1, 11), (1, 12), (2, 20)]))
    gc.collect()
    fresh = cache.get(query, db)
    assert count_answers(query, db, tree=fresh) == 4


def test_fingerprint_tracks_versions(pair):
    _, db = pair
    before = database_fingerprint(db)
    db["R"].add((3, 3))
    assert database_fingerprint(db) != before


def test_lru_eviction(pair):
    query, db = pair
    cache = TreeCache(limit=2)
    tree = cache.get(query, db)
    for _ in range(3):
        cache.get(query, db.copy())
    assert len(cache) == 2
    # The original entry was evicted; a new tree is built for the same pair.
    assert cache.get(query, db) is not tree


def test_limit_must_be_positive():
    with pytest.raises(ValueError):
        TreeCache(limit=0)
