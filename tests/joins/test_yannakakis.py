"""Yannakakis evaluation: full reduction and materialization."""

import random
import sys

from hypothesis import given, settings, strategies as st

from repro.data.database import Database
from repro.data.relation import Relation
from repro.joins.counting import count_answers
from repro.joins.message_passing import MaterializedTree
from repro.joins.yannakakis import evaluate, full_reduce
from repro.query.atom import Atom
from repro.query.join_query import JoinQuery


def answer_set(answers):
    return {tuple(sorted(a.items())) for a in answers}


def test_figure1_answers_match_brute_force(figure1_query, figure1_db):
    fast = evaluate(figure1_query, figure1_db)
    slow = figure1_query.answers_brute_force(figure1_db)
    assert len(fast) == 13
    assert answer_set(fast) == answer_set(slow)


def test_limit_caps_output(figure1_query, figure1_db):
    assert len(evaluate(figure1_query, figure1_db, limit=5)) == 5


def test_empty_result(figure1_query, figure1_db):
    figure1_db.replace(Relation("U", ("x4", "x5"), []))
    assert evaluate(figure1_query, figure1_db) == []


def test_full_reduce_removes_dangling():
    query = JoinQuery([Atom("R", ("x", "y")), Atom("S", ("y", "z"))])
    db = Database(
        [
            Relation("R", ("a", "b"), [(1, 1), (2, 99)]),
            Relation("S", ("a", "b"), [(1, 5), (77, 6)]),
        ]
    )
    reduced = full_reduce(query, db)
    assert sorted(reduced["R"].rows) == [(1, 1)]
    assert sorted(reduced["S"].rows) == [(1, 5)]


def test_full_reduce_preserves_answers(three_path):
    query, db = three_path
    reduced = full_reduce(query, db)
    assert count_answers(query, reduced) == count_answers(query, db)
    # Every remaining tuple participates in some answer: re-reducing changes nothing.
    again = full_reduce(query, reduced)
    for relation in reduced:
        assert sorted(again[relation.name].rows) == sorted(relation.rows)


def test_evaluate_binary_join(binary_join):
    query, db = binary_join
    fast = evaluate(query, db)
    slow = query.answers_brute_force(db)
    assert answer_set(fast) == answer_set(slow)


def test_evaluate_accepts_shared_tree(figure1_query, figure1_db):
    tree = MaterializedTree(figure1_query, figure1_db)
    with_tree = evaluate(figure1_query, figure1_db, tree=tree)
    without = evaluate(figure1_query, figure1_db)
    assert answer_set(with_tree) == answer_set(without)


def test_limit_zero_and_negative(figure1_query, figure1_db):
    assert evaluate(figure1_query, figure1_db, limit=0) == []
    assert evaluate(figure1_query, figure1_db, limit=-1) == []


def test_deep_path_query_does_not_recurse():
    """Regression: the answer expansion used to recurse once per join-tree
    level, so a path query longer than Python's recursion limit crashed with
    RecursionError.  The iterative odometer enumeration has no such limit
    (checked here by running a 500-level path under a tightened limit)."""
    depth = 500
    atoms = [Atom(f"R{i}", (f"x{i}", f"x{i + 1}")) for i in range(depth)]
    query = JoinQuery(atoms)
    db = Database(
        [Relation(f"R{i}", (f"x{i}", f"x{i + 1}"), [(0, 0), (0, 1)][: 1 + (i == 0)])
         for i in range(depth)]
    )
    # R0 has rows (0,0) and (0,1); x1 must be 0 to continue the path, so the
    # (0,1) row of R0 is dangling and exactly one answer survives.
    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(len(_inspect_stack_depth()) + depth - 50)
    try:
        answers = evaluate(query, db)
    finally:
        sys.setrecursionlimit(limit)
    assert len(answers) == 1
    assert all(answers[0][f"x{i}"] == 0 for i in range(depth + 1))


def _inspect_stack_depth():
    """Current Python frames (the recursion limit counts from the bottom)."""
    import inspect

    return inspect.stack(0)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rows=st.integers(min_value=0, max_value=10),
    domain=st.integers(min_value=1, max_value=4),
)
def test_star_query_matches_brute_force(seed, rows, domain):
    rng = random.Random(seed)
    query = JoinQuery(
        [Atom("R1", ("h", "a")), Atom("R2", ("h", "b")), Atom("R3", ("h", "c"))]
    )
    db = Database(
        [
            Relation(
                name, ("h", var),
                [(rng.randrange(domain), rng.randrange(domain)) for _ in range(rows)],
            )
            for name, var in (("R1", "a"), ("R2", "b"), ("R3", "c"))
        ]
    )
    assert answer_set(evaluate(query, db)) == answer_set(query.answers_brute_force(db))
    assert count_answers(query, db) == len(query.answers_brute_force(db))
