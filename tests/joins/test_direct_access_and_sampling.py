"""Direct access (answers by index) and uniform sampling."""

import random
from collections import Counter

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.exceptions import EmptyResultError
from repro.joins.direct_access import DirectAccess
from repro.joins.sampling import AnswerSampler
from repro.query.atom import Atom
from repro.query.join_query import JoinQuery


def answer_key(assignment):
    return tuple(sorted(assignment.items()))


class TestDirectAccess:
    def test_enumerates_all_answers_exactly_once(self, figure1_query, figure1_db):
        access = DirectAccess(figure1_query, figure1_db)
        assert len(access) == 13
        produced = {answer_key(access[i]) for i in range(len(access))}
        expected = {
            answer_key(a) for a in figure1_query.answers_brute_force(figure1_db)
        }
        assert produced == expected

    def test_every_index_is_a_real_answer(self, three_path):
        query, db = three_path
        access = DirectAccess(query, db)
        for index in random.Random(0).sample(range(len(access)), 25):
            assert query.satisfies(access[index], db)

    def test_negative_index(self, figure1_query, figure1_db):
        access = DirectAccess(figure1_query, figure1_db)
        assert answer_key(access[-1]) == answer_key(access[len(access) - 1])

    def test_out_of_range(self, figure1_query, figure1_db):
        access = DirectAccess(figure1_query, figure1_db)
        with pytest.raises(IndexError):
            access[13]
        with pytest.raises(IndexError):
            access[-14]

    def test_iteration(self, figure1_query, figure1_db):
        access = DirectAccess(figure1_query, figure1_db)
        assert len(list(access)) == 13

    def test_empty_query_result(self):
        query = JoinQuery([Atom("R", ("x", "y")), Atom("S", ("y", "z"))])
        db = Database(
            [Relation("R", ("a", "b"), [(1, 2)]), Relation("S", ("a", "b"), [(9, 9)])]
        )
        access = DirectAccess(query, db)
        assert len(access) == 0

    def test_cartesian_product_indexing(self):
        query = JoinQuery([Atom("A", ("x",)), Atom("B", ("y",))])
        db = Database(
            [
                Relation("A", ("x",), [(i,) for i in range(3)]),
                Relation("B", ("y",), [(i,) for i in range(4)]),
            ]
        )
        access = DirectAccess(query, db)
        assert len(access) == 12
        assert len({answer_key(access[i]) for i in range(12)}) == 12


class TestAnswerSampler:
    def test_samples_are_answers(self, three_path):
        query, db = three_path
        sampler = AnswerSampler(query, db, seed=1)
        for sample in sampler.sample_many(20):
            assert query.satisfies(sample, db)

    def test_total_answers_exposed(self, figure1_query, figure1_db):
        sampler = AnswerSampler(figure1_query, figure1_db, seed=0)
        assert sampler.total_answers == 13

    def test_deterministic_with_seed(self, figure1_query, figure1_db):
        first = AnswerSampler(figure1_query, figure1_db, seed=7).sample_many(10)
        second = AnswerSampler(figure1_query, figure1_db, seed=7).sample_many(10)
        assert first == second

    def test_empty_result_raises(self):
        query = JoinQuery([Atom("R", ("x",))])
        db = Database([Relation("R", ("a",), [])])
        with pytest.raises(EmptyResultError):
            AnswerSampler(query, db)

    def test_sampling_is_roughly_uniform(self, figure1_query, figure1_db):
        """Chi-square style sanity check: every answer appears, none dominates."""
        sampler = AnswerSampler(figure1_query, figure1_db, seed=123)
        draws = 13 * 120
        counts = Counter(answer_key(sampler.sample()) for _ in range(draws))
        assert len(counts) == 13  # every answer was seen
        expected = draws / 13
        for count in counts.values():
            assert 0.5 * expected < count < 1.6 * expected

    def test_accepts_random_instance(self, figure1_query, figure1_db):
        rng = random.Random(5)
        sampler = AnswerSampler(figure1_query, figure1_db, seed=rng)
        assert sampler.sample()
