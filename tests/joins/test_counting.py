"""Counting answers via message passing (Example 2.1 / Figure 1)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.database import Database
from repro.data.relation import Relation
from repro.exceptions import CyclicQueryError
from repro.joins.counting import count_answers, count_from_tree, subtree_counts
from repro.joins.message_passing import MaterializedTree
from repro.query.atom import Atom
from repro.query.join_query import JoinQuery
from repro.query.join_tree import build_join_tree


def test_paper_figure1(figure1_query, figure1_db):
    """The running example of Figure 1 has exactly 13 answers."""
    assert count_answers(figure1_query, figure1_db) == 13


def test_paper_figure1_subtree_counts(figure1_query, figure1_db):
    """Figure 1(a): the R-tuples have 9 and 4 subtree answers, S/T/U as shown."""
    rooted = build_join_tree(figure1_query).rooted(root=0)
    tree = MaterializedTree(figure1_query, figure1_db, rooted=rooted)
    counts = subtree_counts(tree)
    r_counts = dict(zip(tree.rows(0), counts[0]))
    assert r_counts[(1, 1)] == 9
    assert r_counts[(2, 2)] == 4
    t_counts = dict(zip(tree.rows(2), counts[2]))
    assert t_counts[(1, 6)] == 2
    assert t_counts[(1, 7)] == 1
    assert t_counts[(2, 6)] == 2


def test_count_matches_brute_force(figure1_query, figure1_db):
    answers = figure1_query.answers_brute_force(figure1_db)
    assert count_answers(figure1_query, figure1_db) == len(answers)


def test_empty_relation_gives_zero(figure1_query, figure1_db):
    figure1_db.replace(Relation("T", ("x2", "x4"), []))
    assert count_answers(figure1_query, figure1_db) == 0


def test_dangling_tuples_do_not_count():
    query = JoinQuery([Atom("R", ("x", "y")), Atom("S", ("y", "z"))])
    db = Database(
        [
            Relation("R", ("a", "b"), [(1, 1), (2, 99)]),  # (2, 99) dangles
            Relation("S", ("a", "b"), [(1, 5), (1, 6)]),
        ]
    )
    assert count_answers(query, db) == 2


def test_count_root_choice_invariant(figure1_query, figure1_db):
    for root in range(4):
        rooted = build_join_tree(figure1_query).rooted(root=root)
        tree = MaterializedTree(figure1_query, figure1_db, rooted=rooted)
        assert count_from_tree(tree) == 13


def test_cartesian_product_count():
    query = JoinQuery([Atom("A", ("x",)), Atom("B", ("y",))])
    db = Database(
        [Relation("A", ("x",), [(i,) for i in range(7)]),
         Relation("B", ("y",), [(i,) for i in range(5)])]
    )
    assert count_answers(query, db) == 35


def test_cyclic_query_raises():
    query = JoinQuery(
        [Atom("R", ("x", "y")), Atom("S", ("y", "z")), Atom("T", ("z", "x"))]
    )
    db = Database(
        [
            Relation("R", ("a", "b"), [(1, 2)]),
            Relation("S", ("a", "b"), [(2, 3)]),
            Relation("T", ("a", "b"), [(3, 1)]),
        ]
    )
    with pytest.raises(CyclicQueryError):
        count_answers(query, db)


def test_self_join_count():
    query = JoinQuery([Atom("E", ("x", "y")), Atom("E", ("y", "z"))])
    db = Database([Relation("E", ("a", "b"), [(1, 2), (2, 3), (2, 4), (3, 1)])])
    assert count_answers(query, db) == len(query.answers_brute_force(db))


# ---------------------------------------------------------------------- #
# Property test: counting agrees with brute force on random path queries.
# ---------------------------------------------------------------------- #
@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_atoms=st.integers(min_value=1, max_value=3),
    rows=st.integers(min_value=0, max_value=12),
    domain=st.integers(min_value=1, max_value=4),
)
def test_count_matches_brute_force_random(seed, num_atoms, rows, domain):
    rng = random.Random(seed)
    atoms = [Atom(f"R{i}", (f"x{i}", f"x{i+1}")) for i in range(num_atoms)]
    relations = [
        Relation(
            f"R{i}", (f"x{i}", f"x{i+1}"),
            [(rng.randrange(domain), rng.randrange(domain)) for _ in range(rows)],
        )
        for i in range(num_atoms)
    ]
    query, db = JoinQuery(atoms), Database(relations)
    assert count_answers(query, db) == len(query.answers_brute_force(db))
