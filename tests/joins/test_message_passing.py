"""Unit tests for the materialized join-tree substrate."""

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.exceptions import QueryError
from repro.joins.message_passing import MaterializedTree, merge_assignments
from repro.query.atom import Atom
from repro.query.join_query import JoinQuery
from repro.query.join_tree import build_join_tree


class TestMaterializedTree:
    def test_figure1_structure(self, figure1_query, figure1_db):
        tree = MaterializedTree(figure1_query, figure1_db)
        assert set(tree.nodes_bottom_up()) == {0, 1, 2, 3}
        assert tree.nodes_top_down()[0] == tree.root
        assert tree.total_rows() == figure1_db.size

    def test_rows_and_variables(self, figure1_query, figure1_db):
        tree = MaterializedTree(figure1_query, figure1_db)
        assert tree.variables(0) == ("x1", "x2")
        assert len(tree.rows(1)) == 5

    def test_join_groups(self, figure1_query, figure1_db):
        tree = MaterializedTree(figure1_query, figure1_db, rooted=build_join_tree(figure1_query).rooted(0))
        # S (atom 1) is a child of R (atom 0), grouped by x1.
        groups = tree.child_groups(0, 1)
        assert set(groups) == {(1,), (2,)}
        assert len(groups[(1,)]) == 3

    def test_parent_group_key(self, figure1_query, figure1_db):
        tree = MaterializedTree(figure1_query, figure1_db, rooted=build_join_tree(figure1_query).rooted(0))
        row = tree.rows(0)[0]  # (1, 1)
        assert tree.parent_group_key(0, row, 1) == (1,)

    def test_assignment(self, figure1_query, figure1_db):
        tree = MaterializedTree(figure1_query, figure1_db)
        assert tree.assignment(0, (1, 1)) == {"x1": 1, "x2": 1}

    def test_repeated_variable_atom(self):
        query = JoinQuery([Atom("R", ("x", "x"))])
        db = Database([Relation("R", ("a", "b"), [(1, 1), (1, 2)])])
        tree = MaterializedTree(query, db)
        assert tree.variables(0) == ("x",)
        assert tree.rows(0) == [(1,)]

    def test_arity_mismatch_rejected(self):
        query = JoinQuery([Atom("R", ("x", "y", "z"))])
        db = Database([Relation("R", ("a", "b"), [(1, 2)])])
        with pytest.raises(QueryError):
            MaterializedTree(query, db)

    def test_custom_root(self, figure1_query, figure1_db):
        rooted = build_join_tree(figure1_query).rooted(root=3)
        tree = MaterializedTree(figure1_query, figure1_db, rooted=rooted)
        assert tree.root == 3
        assert tree.nodes_top_down()[0] == 3


class TestMergeAssignments:
    def test_disjoint(self):
        assert merge_assignments({"a": 1}, {"b": 2}) == {"a": 1, "b": 2}

    def test_consistent_overlap(self):
        assert merge_assignments({"a": 1}, {"a": 1, "b": 2}) == {"a": 1, "b": 2}

    def test_conflict(self):
        assert merge_assignments({"a": 1}, {"a": 2}) is None
