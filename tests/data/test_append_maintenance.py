"""Satellite: ``Relation.add`` keeps the index catalog warm.

Appending used to drop the whole :class:`IndexCatalog`, discarding every
memoized weight-value array along with the (cheap to patch) hash indexes.
Now the catalog survives: hash indexes and key sets absorb the new row in
place, weight-value memos are extended lazily, and only order-derived
structures (sort orders, trimmer memos) are recomputed.
"""

from __future__ import annotations

from repro.data.relation import Relation


def make_relation() -> Relation:
    return Relation(
        "R",
        ("x", "y"),
        [(1, "a"), (2, "b"), (1, "c"), (3, "a")],
    )


class TestCatalogSurvival:
    def test_catalog_identity_preserved_across_add(self):
        relation = make_relation()
        catalog = relation.indexes
        relation.add((4, "d"))
        assert relation.indexes is catalog

    def test_hash_index_delta_appended(self):
        relation = make_relation()
        index = relation.indexes.hash_index(("x",))
        relation.add((1, "z"))
        # Same structure, patched in place: no rebuild happened.
        assert relation.indexes.hash_index(("x",)) is index
        assert index[(1,)] == [0, 2, 4]
        relation.add((9, "new"))
        assert index[(9,)] == [5]

    def test_multi_attribute_hash_index_delta_appended(self):
        relation = make_relation()
        index = relation.indexes.hash_index(("x", "y"))
        relation.add((1, "a"))
        assert index[(1, "a")] == [0, 4]

    def test_empty_signature_hash_index_delta_appended(self):
        relation = make_relation()
        index = relation.indexes.hash_index(())
        relation.add((5, "e"))
        assert index[()] == [0, 1, 2, 3, 4]

    def test_key_set_delta_appended(self):
        relation = make_relation()
        keys = relation.indexes.key_set(("x",))
        relation.add((7, "q"))
        assert relation.indexes.key_set(("x",)) is keys
        assert (7,) in keys

    def test_membership_index_stays_current(self):
        relation = make_relation()
        assert (6, "f") not in relation  # builds the full-schema key set
        misses_after_build = relation.indexes.misses
        relation.add((6, "f"))
        assert (6, "f") in relation
        # Served from the delta-maintained key set, not a rebuild.
        assert relation.indexes.misses == misses_after_build


class TestWeightValueExtension:
    def test_values_extended_not_recomputed(self):
        relation = make_relation()
        calls = []

        def key(row):
            calls.append(row)
            return row[0]

        values = relation.indexes.weight_values(("w",), key)
        assert values == [1, 2, 1, 3]
        assert len(calls) == 4
        relation.add((5, "e"))
        extended = relation.indexes.weight_values(("w",), key)
        assert extended == [1, 2, 1, 3, 5]
        # Only the appended row was keyed; the prefix memo was reused.
        assert len(calls) == 5

    def test_extension_is_a_fresh_list(self):
        # Readers holding the pre-append array must not see it grow.
        relation = make_relation()
        key = lambda row: row[0]  # noqa: E731
        before = relation.indexes.weight_values(("w",), key)
        relation.add((5, "e"))
        after = relation.indexes.weight_values(("w",), key)
        assert before == [1, 2, 1, 3]
        assert after == [1, 2, 1, 3, 5]
        assert after is not before

    def test_multiple_appends_between_reads(self):
        relation = make_relation()
        key = lambda row: row[0]  # noqa: E731
        relation.indexes.weight_values(("w",), key)
        relation.add((5, "e"))
        relation.add((6, "f"))
        assert relation.indexes.weight_values(("w",), key) == [1, 2, 1, 3, 5, 6]


class TestOrderRecomputation:
    def test_weight_order_recomputed_after_add(self):
        relation = Relation("R", ("x",), [(3,), (1,)])
        key = lambda row: row[0]  # noqa: E731
        assert relation.indexes.weight_order(("w",), key) == [1, 0]
        relation.add((0,))
        assert relation.indexes.weight_order(("w",), key) == [2, 1, 0]
        relation.add((2,))
        assert relation.indexes.weight_order(("w",), key) == [2, 1, 3, 0]

    def test_memo_dropped_after_add(self):
        relation = make_relation()
        calls = []

        def compute():
            calls.append(1)
            return {"built": len(calls)}

        relation.indexes.memo("tag", compute)
        relation.add((5, "e"))
        rebuilt = relation.indexes.memo("tag", compute)
        assert rebuilt == {"built": 2}
        assert len(calls) == 2


class TestCorrectnessAfterAppend:
    def test_semijoin_after_interleaved_appends(self):
        left = make_relation()
        right = Relation("S", ("x",), [(2,)])
        assert len(left.semijoin(right)) == 1  # builds both sides' indexes
        right.add((3,))
        left.add((2, "zz"))
        result = left.semijoin(right)
        assert sorted(result.rows) == [(2, "b"), (2, "zz"), (3, "a")]

    def test_group_by_after_add_matches_cold_rebuild(self):
        warm = make_relation()
        warm.group_by(["x"])  # builds the index before the append
        warm.add((1, "zz"))
        cold = Relation("R", ("x", "y"), list(warm.rows))
        assert warm.group_by(["x"]) == cold.group_by(["x"])
