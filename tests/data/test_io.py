"""CSV loading and saving of relations and databases."""

import pytest

from repro.data.database import Database
from repro.data.io import (
    load_database_csv,
    load_relation_csv,
    parse_value,
    save_database_csv,
    save_relation_csv,
)
from repro.data.relation import Relation
from repro.exceptions import SchemaError


class TestParseValue:
    def test_int(self):
        assert parse_value("42") == 42
        assert isinstance(parse_value("42"), int)

    def test_float(self):
        assert parse_value("3.5") == 3.5

    def test_string(self):
        assert parse_value("alice") == "alice"


class TestRelationRoundTrip:
    def test_save_and_load(self, tmp_path):
        relation = Relation("R", ("a", "b"), [(1, 2.5), (3, -4.0)])
        path = tmp_path / "R.csv"
        save_relation_csv(relation, path)
        loaded = load_relation_csv(path)
        assert loaded.name == "R"
        assert loaded.schema == ("a", "b")
        assert loaded.rows == [(1, 2.5), (3, -4.0)]

    def test_name_override(self, tmp_path):
        path = tmp_path / "whatever.csv"
        save_relation_csv(Relation("R", ("a",), [(1,)]), path)
        assert load_relation_csv(path, name="Renamed").name == "Renamed"

    def test_string_values_preserved(self, tmp_path):
        path = tmp_path / "People.csv"
        path.write_text("name,age\nalice,31\nbob,29\n")
        loaded = load_relation_csv(path)
        assert loaded.rows == [("alice", 31), ("bob", 29)]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_relation_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(SchemaError):
            load_relation_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "R.csv"
        path.write_text("a,b\n1,2\n\n3,4\n")
        assert len(load_relation_csv(path)) == 2


class TestDatabaseRoundTrip:
    def test_save_and_load_directory(self, tmp_path):
        db = Database(
            [
                Relation("R", ("a", "b"), [(1, 2)]),
                Relation("S", ("b", "c"), [(2, 3), (2, 4)]),
            ]
        )
        save_database_csv(db, tmp_path / "db")
        loaded = load_database_csv(tmp_path / "db")
        assert sorted(loaded.relation_names) == ["R", "S"]
        assert loaded.size == 3

    def test_missing_directory(self, tmp_path):
        with pytest.raises(SchemaError):
            load_database_csv(tmp_path / "nope")

    def test_empty_directory(self, tmp_path):
        (tmp_path / "db").mkdir()
        with pytest.raises(SchemaError):
            load_database_csv(tmp_path / "db")
