"""Unit tests for the Relation container."""

import pytest

from repro.data.relation import Relation
from repro.exceptions import SchemaError


def make_relation():
    return Relation("R", ("a", "b"), [(1, 10), (2, 20), (3, 30), (2, 25)])


class TestConstruction:
    def test_basic_properties(self):
        relation = make_relation()
        assert relation.name == "R"
        assert relation.schema == ("a", "b")
        assert relation.arity == 2
        assert len(relation) == 4

    def test_rows_are_tuples(self):
        relation = Relation("R", ("a",), [[1], [2]])
        assert all(isinstance(row, tuple) for row in relation.rows)

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("a", "a"), [])

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", ("a", "b"), [(1,)])

    def test_empty_relation(self):
        relation = Relation("Empty", ("a", "b"))
        assert len(relation) == 0
        assert list(relation) == []

    def test_contains(self):
        relation = make_relation()
        assert (1, 10) in relation
        assert (9, 9) not in relation

    def test_equality_ignores_row_order(self):
        left = Relation("R", ("a",), [(1,), (2,)])
        right = Relation("R", ("a",), [(2,), (1,)])
        assert left == right

    def test_equality_different_name(self):
        left = Relation("R", ("a",), [(1,)])
        right = Relation("S", ("a",), [(1,)])
        assert left != right

    def test_repr_mentions_name_and_size(self):
        relation = make_relation()
        assert "R" in repr(relation)
        assert "4" in repr(relation)


class TestSchemaAccess:
    def test_position(self):
        relation = make_relation()
        assert relation.position("a") == 0
        assert relation.position("b") == 1

    def test_position_missing_attribute(self):
        with pytest.raises(SchemaError):
            make_relation().position("zzz")

    def test_has_attribute(self):
        relation = make_relation()
        assert relation.has_attribute("a")
        assert not relation.has_attribute("c")

    def test_value(self):
        relation = make_relation()
        assert relation.value((7, 8), "b") == 8

    def test_column(self):
        relation = make_relation()
        assert relation.column("a") == [1, 2, 3, 2]


class TestOperations:
    def test_add_validates_arity(self):
        relation = make_relation()
        relation.add((4, 40))
        assert len(relation) == 5
        with pytest.raises(SchemaError):
            relation.add((4,))

    def test_filter(self):
        relation = make_relation()
        filtered = relation.filter(lambda row: row[0] >= 2)
        assert len(filtered) == 3
        assert len(relation) == 4  # original untouched

    def test_filter_attribute(self):
        relation = make_relation()
        filtered = relation.filter_attribute("b", lambda v: v > 15)
        assert sorted(filtered.column("b")) == [20, 25, 30]

    def test_project_preserves_duplicates(self):
        relation = Relation("R", ("a", "b"), [(1, 1), (1, 2)])
        projected = relation.project(["a"])
        assert projected.rows == [(1,), (1,)]
        assert projected.schema == ("a",)

    def test_project_reorders_columns(self):
        relation = make_relation()
        projected = relation.project(["b", "a"])
        assert projected.rows[0] == (10, 1)

    def test_distinct(self):
        relation = Relation("R", ("a",), [(1,), (1,), (2,)])
        assert len(relation.distinct()) == 2

    def test_rename(self):
        relation = make_relation()
        renamed = relation.rename("Other")
        assert renamed.name == "Other"
        assert renamed.rows == relation.rows

    def test_with_schema(self):
        relation = make_relation()
        relabeled = relation.with_schema(("x", "y"))
        assert relabeled.schema == ("x", "y")
        assert relabeled.rows == relation.rows

    def test_with_schema_wrong_arity(self):
        with pytest.raises(SchemaError):
            make_relation().with_schema(("x",))

    def test_extend_adds_column(self):
        relation = make_relation()
        extended = relation.extend("total", lambda row: row[0] + row[1])
        assert extended.schema == ("a", "b", "total")
        assert extended.rows[0] == (1, 10, 11)

    def test_extend_existing_attribute_rejected(self):
        with pytest.raises(SchemaError):
            make_relation().extend("a", lambda row: 0)

    def test_group_by(self):
        relation = make_relation()
        groups = relation.group_by(["a"])
        assert set(groups) == {(1,), (2,), (3,)}
        assert len(groups[(2,)]) == 2

    def test_group_by_empty_key(self):
        relation = make_relation()
        groups = relation.group_by([])
        assert list(groups) == [()]
        assert len(groups[()]) == 4


class TestJoins:
    def test_semijoin_shared_attributes(self):
        left = Relation("L", ("a", "b"), [(1, 1), (2, 2), (3, 3)])
        right = Relation("R", ("b", "c"), [(1, 10), (3, 30)])
        reduced = left.semijoin(right)
        assert sorted(reduced.column("b")) == [1, 3]

    def test_semijoin_no_shared_attributes_nonempty(self):
        left = Relation("L", ("a",), [(1,), (2,)])
        right = Relation("R", ("b",), [(5,)])
        assert len(left.semijoin(right)) == 2

    def test_semijoin_no_shared_attributes_empty_other(self):
        left = Relation("L", ("a",), [(1,), (2,)])
        right = Relation("R", ("b",), [])
        assert len(left.semijoin(right)) == 0

    def test_natural_join(self):
        left = Relation("L", ("a", "b"), [(1, 1), (2, 2)])
        right = Relation("R", ("b", "c"), [(1, 10), (1, 11), (2, 20)])
        joined = left.natural_join(right)
        assert joined.schema == ("a", "b", "c")
        assert len(joined) == 3

    def test_natural_join_cartesian(self):
        left = Relation("L", ("a",), [(1,), (2,)])
        right = Relation("R", ("b",), [(7,), (8,)])
        joined = left.natural_join(right)
        assert len(joined) == 4
