"""Tests for the per-relation index catalog (repro.data.indexes),
including the invalidation guarantees after mutation."""

from __future__ import annotations

from repro.data.relation import Relation


def make_relation():
    return Relation(
        "R",
        ("x", "y"),
        [(1, "a"), (2, "b"), (1, "c"), (3, "a")],
    )


class TestHashIndex:
    def test_hash_index_positions(self):
        relation = make_relation()
        index = relation.indexes.hash_index(("x",))
        assert index == {(1,): [0, 2], (2,): [1], (3,): [3]}

    def test_hash_index_multi_attribute(self):
        relation = make_relation()
        index = relation.indexes.hash_index(("x", "y"))
        assert index[(1, "a")] == [0]
        assert len(index) == 4

    def test_hash_index_empty_attributes(self):
        relation = make_relation()
        assert relation.indexes.hash_index(()) == {(): [0, 1, 2, 3]}

    def test_hash_index_is_memoized(self):
        relation = make_relation()
        first = relation.indexes.hash_index(("x",))
        assert relation.indexes.hash_index(("x",)) is first
        assert relation.indexes.hits >= 1

    def test_key_set(self):
        relation = make_relation()
        assert relation.indexes.key_set(("y",)) == {("a",), ("b",), ("c",)}


class TestOrders:
    def test_weight_order_and_values(self):
        relation = make_relation()
        key = lambda row: -row[0]  # noqa: E731
        order = relation.indexes.weight_order(("neg",), key)
        assert order == [3, 1, 0, 2]
        assert relation.indexes.weight_values(("neg",), key) == [-1, -2, -1, -3]

    def test_weight_order_derived_from_parent_view(self):
        relation = make_relation()
        key = lambda row: row[0]  # noqa: E731
        parent_order = relation.indexes.weight_order(("w",), key)
        assert parent_order == [0, 2, 1, 3]
        view = relation.select_rows([1, 3])  # rows (2, "b") and (3, "a")
        derived = view.indexes.weight_order(("w",), key)
        assert derived == [0, 1]
        # The parent's order was consulted, not recomputed: the parent
        # catalog registered a hit for the shared tag.
        assert relation.indexes.hits >= 1

    def test_tag_objects_are_pinned_alive(self):
        # Tags embed identifying objects (e.g. the ranking); the memo table
        # must keep them alive so their ids cannot be recycled into stale
        # cache hits for a semantically different object.
        import gc
        import weakref

        class Marker:
            pass

        relation = make_relation()
        marker = Marker()
        ref = weakref.ref(marker)
        relation.indexes.weight_values((marker, "w"), lambda row: row[0])
        del marker
        gc.collect()
        assert ref() is not None  # held by the catalog's memo table
        # Appends keep the catalog (and its weight-value memos), so the tag
        # stays pinned across mutation too.
        relation.add((8, "h"))
        gc.collect()
        assert ref() is not None

    def test_memo(self):
        relation = make_relation()
        calls = []

        def compute():
            calls.append(1)
            return {"built": True}

        first = relation.indexes.memo("tag", compute)
        second = relation.indexes.memo("tag", compute)
        assert first is second
        assert len(calls) == 1


class TestInvalidation:
    """Satellite: ``Relation.add`` after an index is built must never serve
    stale semijoin / group / sort / membership results."""

    def test_contains_after_add(self):
        relation = make_relation()
        assert (9, "z") not in relation  # builds the membership index
        relation.add((9, "z"))
        assert (9, "z") in relation

    def test_group_by_after_add(self):
        relation = make_relation()
        assert len(relation.group_by(["x"])) == 3  # builds the hash index
        relation.add((4, "d"))
        groups = relation.group_by(["x"])
        assert (4,) in groups
        assert groups[(4,)] == [(4, "d")]

    def test_semijoin_after_add(self):
        left = make_relation()
        right = Relation("S", ("x",), [(2,)])
        assert len(left.semijoin(right)) == 1  # builds both sides' indexes
        right.add((1,))
        assert len(left.semijoin(right)) == 3
        left.add((2, "zz"))
        assert len(left.semijoin(right)) == 4

    def test_weight_order_after_add(self):
        relation = Relation("R", ("x",), [(3,), (1,)])
        key = lambda row: row[0]  # noqa: E731
        assert relation.indexes.weight_order(("w",), key) == [1, 0]
        relation.add((0,))
        assert relation.indexes.weight_order(("w",), key) == [2, 1, 0]

    def test_version_bumps_on_add(self):
        relation = make_relation()
        before = relation.version
        relation.add((5, "e"))
        assert relation.version == before + 1

    def test_view_detaches_from_parent_after_add(self):
        relation = make_relation()
        view = relation.select_rows([0, 1])
        assert view.parent_view() is not None
        view.add((7, "q"))
        assert view.parent_view() is None
        # The mutated view answers from its own (fresh) indexes.
        assert (7, "q") in view
        assert (7, "q") not in relation
