"""Tests for the columnar backing store (repro.data.columns)."""

from __future__ import annotations

import pytest

from repro.data.columns import ColumnStore


ROWS = [(1, "a"), (2, "b"), (3, "c"), (4, "d")]


class TestMaterialization:
    def test_rows_roundtrip_from_rows(self):
        store = ColumnStore.from_rows(2, ROWS)
        assert store.rows() == ROWS
        assert len(store) == 4

    def test_rows_roundtrip_from_columns(self):
        store = ColumnStore.from_columns([[1, 2, 3, 4], ["a", "b", "c", "d"]])
        assert store.rows() == ROWS

    def test_column_from_rows(self):
        store = ColumnStore.from_rows(2, ROWS)
        assert store.column(0) == [1, 2, 3, 4]
        assert store.column(1) == ["a", "b", "c", "d"]

    def test_column_is_cached(self):
        store = ColumnStore.from_rows(2, ROWS)
        assert store.column(0) is store.column(0)

    def test_column_out_of_range(self):
        store = ColumnStore.from_rows(2, ROWS)
        with pytest.raises(IndexError):
            store.column(2)

    def test_iteration(self):
        store = ColumnStore.from_rows(2, ROWS)
        assert list(store) == ROWS

    def test_arity_zero(self):
        store = ColumnStore(0, length=3)
        assert len(store) == 3
        assert store.rows() == [(), (), ()]


class TestViews:
    def test_select_keeps_positions(self):
        store = ColumnStore.from_rows(2, ROWS)
        view = store.select([0, 2])
        assert view.rows() == [(1, "a"), (3, "c")]
        assert view.column(1) == ["a", "c"]

    def test_select_composes_to_base(self):
        store = ColumnStore.from_rows(2, ROWS)
        view = store.select([1, 2, 3]).select([0, 2])
        assert view.rows() == [(2, "b"), (4, "d")]

    def test_project_shares_columns_on_leaf(self):
        store = ColumnStore.from_columns([[1, 2], ["a", "b"]])
        projected = store.project([1])
        assert projected.column(0) is store.column(1)
        assert projected.rows() == [("a",), ("b",)]

    def test_project_duplicates_columns(self):
        store = ColumnStore.from_rows(2, ROWS)
        projected = store.project([0, 0])
        assert projected.rows()[0] == (1, 1)

    def test_with_column(self):
        store = ColumnStore.from_rows(2, ROWS[:2])
        extended = store.with_column([10, 20])
        assert extended.rows() == [(1, "a", 10), (2, "b", 20)]

    def test_with_column_wrong_length(self):
        store = ColumnStore.from_rows(2, ROWS)
        with pytest.raises(ValueError):
            store.with_column([1])


class TestMutation:
    def test_append_to_leaf(self):
        store = ColumnStore.from_rows(2, ROWS[:2])
        store.append((9, "z"))
        assert store.rows() == ROWS[:2] + [(9, "z")]
        assert store.column(0) == [1, 2, 9]

    def test_append_does_not_mutate_previously_served_column(self):
        store = ColumnStore.from_rows(2, ROWS[:2])
        column = store.column(0)
        store.append((9, "z"))
        assert column == [1, 2]  # the handed-out list is frozen
        assert store.column(0) == [1, 2, 9]

    def test_append_does_not_grow_projection_of_row_leaf(self):
        # Regression: project() shares the parent's cached column list, so
        # append must drop (not extend) the cache or the projection grows.
        store = ColumnStore.from_rows(2, ROWS[:3])
        projected = store.project([0])
        store.append((9, "z"))
        assert len(projected) == 3
        assert projected.rows() == [(1,), (2,), (3,)]

    def test_snapshot_is_frozen_against_append(self):
        store = ColumnStore.from_rows(2, ROWS[:2])
        frozen = store.snapshot()
        store.append((9, "z"))
        assert frozen.rows() == ROWS[:2]
        assert len(frozen) == 2

    def test_append_to_view_is_copy_on_write(self):
        store = ColumnStore.from_rows(2, ROWS)
        view = store.select([0, 1])
        view.append((9, "z"))
        assert view.rows() == [(1, "a"), (2, "b"), (9, "z")]
        assert store.rows() == ROWS  # parent untouched

    def test_append_does_not_corrupt_shared_projection(self):
        store = ColumnStore.from_columns([[1, 2], ["a", "b"]])
        projected = store.project([0])
        store.append((3, "c"))
        assert projected.rows() == [(1,), (2,)]
        assert store.rows() == [(1, "a"), (2, "b"), (3, "c")]
