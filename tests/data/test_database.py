"""Unit tests for the Database container."""

import pytest

from repro.data.database import Database
from repro.data.relation import Relation
from repro.exceptions import SchemaError


def make_db():
    return Database(
        [
            Relation("R", ("a", "b"), [(1, 2), (3, 4)]),
            Relation("S", ("b", "c"), [(2, 5)]),
        ]
    )


class TestConstruction:
    def test_from_iterable(self):
        db = make_db()
        assert len(db) == 2
        assert db.relation_names == ["R", "S"]

    def test_from_mapping(self):
        relation = Relation("R", ("a",), [(1,)])
        db = Database({"R": relation})
        assert db["R"] is relation

    def test_mapping_with_mismatched_key_rejected(self):
        relation = Relation("R", ("a",), [(1,)])
        with pytest.raises(SchemaError):
            Database({"Wrong": relation})

    def test_empty_database(self):
        db = Database()
        assert len(db) == 0
        assert db.size == 0

    def test_duplicate_name_rejected(self):
        db = make_db()
        with pytest.raises(SchemaError):
            db.add(Relation("R", ("a",), []))

    def test_add_with_replace(self):
        db = make_db()
        db.add(Relation("R", ("a",), [(9,)]), replace=True)
        assert db["R"].schema == ("a",)


class TestAccess:
    def test_getitem_missing(self):
        with pytest.raises(SchemaError):
            make_db()["T"]

    def test_contains(self):
        db = make_db()
        assert "R" in db
        assert "T" not in db

    def test_size_counts_tuples(self):
        assert make_db().size == 3

    def test_get_with_default(self):
        db = make_db()
        assert db.get("T") is None
        assert db.get("R") is db["R"]

    def test_iteration_yields_relations(self):
        names = [relation.name for relation in make_db()]
        assert names == ["R", "S"]

    def test_repr(self):
        assert "R[2]" in repr(make_db())


class TestMutation:
    def test_replace(self):
        db = make_db()
        db.replace(Relation("S", ("b", "c"), [(9, 9), (8, 8)]))
        assert len(db["S"]) == 2

    def test_remove(self):
        db = make_db()
        db.remove("S")
        assert "S" not in db
        with pytest.raises(SchemaError):
            db.remove("S")

    def test_copy_is_independent(self):
        db = make_db()
        clone = db.copy()
        clone["R"].add((5, 6))
        assert len(db["R"]) == 2
        assert len(clone["R"]) == 3

    def test_restrict(self):
        db = make_db()
        only_r = db.restrict(["R"])
        assert only_r.relation_names == ["R"]
        assert "S" not in only_r
