"""Randomized sampling approximation (Section 3.1)."""

import pytest

from repro.approx.randomized import sampling_quantile
from repro.ranking.sum import SumRanking

from tests.conftest import brute_force_weights, quantile_target


class TestSamplingQuantile:
    def test_returns_a_real_answer(self, three_path):
        query, db = three_path
        ranking = SumRanking(["x1", "x2", "x3", "x4"])
        result = sampling_quantile(query, db, ranking, phi=0.5, epsilon=0.2, seed=1)
        assert query.satisfies(result.assignment, db)
        assert result.weight == ranking.weight_of(result.assignment)
        assert result.samples_used == result.repetitions * (
            result.samples_used // result.repetitions
        )

    def test_error_within_epsilon_with_high_probability(self, three_path):
        """With a fixed seed the observed rank error must respect epsilon."""
        query, db = three_path
        ranking = SumRanking(["x1", "x2", "x3", "x4"])
        weights = brute_force_weights(query, db, ranking)
        total = len(weights)
        epsilon = 0.15
        failures = 0
        for seed in range(5):
            for phi in (0.25, 0.5, 0.75):
                result = sampling_quantile(
                    query, db, ranking, phi=phi, epsilon=epsilon, seed=seed
                )
                target = quantile_target(phi, total)
                below = sum(1 for w in weights if w < result.weight)
                at_most = sum(1 for w in weights if w <= result.weight)
                if not (below <= target + epsilon * total and at_most - 1 >= target - epsilon * total):
                    failures += 1
        assert failures == 0

    def test_deterministic_given_seed(self, binary_join):
        query, db = binary_join
        ranking = SumRanking(["x1", "x3"])
        first = sampling_quantile(query, db, ranking, phi=0.3, epsilon=0.2, seed=9)
        second = sampling_quantile(query, db, ranking, phi=0.3, epsilon=0.2, seed=9)
        assert first.weight == second.weight

    def test_more_precision_uses_more_samples(self, binary_join):
        query, db = binary_join
        ranking = SumRanking(["x1", "x3"])
        loose = sampling_quantile(query, db, ranking, phi=0.5, epsilon=0.3, seed=0)
        tight = sampling_quantile(query, db, ranking, phi=0.5, epsilon=0.05, seed=0)
        assert tight.samples_used > loose.samples_used

    @pytest.mark.parametrize(
        "phi,epsilon,delta",
        [(-0.1, 0.1, 0.1), (0.5, 0.0, 0.1), (0.5, 1.5, 0.1), (0.5, 0.1, 0.0)],
    )
    def test_parameter_validation(self, binary_join, phi, epsilon, delta):
        query, db = binary_join
        with pytest.raises(ValueError):
            sampling_quantile(
                query, db, SumRanking(["x1"]), phi=phi, epsilon=epsilon, delta=delta
            )
