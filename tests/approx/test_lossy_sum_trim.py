"""ε-lossy trimming for SUM (Algorithm 4, Lemma 6.1, Figure 4)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.lossy_sum_trim import LossySumTrimmer
from repro.data.database import Database
from repro.data.relation import Relation
from repro.exceptions import TrimmingError
from repro.joins.counting import count_answers
from repro.query.atom import Atom
from repro.query.join_query import JoinQuery
from repro.query.predicates import Comparison, RankPredicate
from repro.ranking.minmax import MaxRanking
from repro.ranking.sum import SumRanking


def three_path_instance(seed=0, rows=15, domain=4):
    rng = random.Random(seed)
    query = JoinQuery(
        [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3")), Atom("R3", ("x3", "x4"))]
    )
    db = Database(
        [
            Relation("R1", ("a", "b"), [(rng.randrange(10), rng.randrange(domain)) for _ in range(rows)]),
            Relation("R2", ("a", "b"), [(rng.randrange(domain), rng.randrange(domain)) for _ in range(rows)]),
            Relation("R3", ("a", "b"), [(rng.randrange(domain), rng.randrange(10)) for _ in range(rows)]),
        ]
    )
    return query, db


def star_instance(seed=0, rows=12, domain=3):
    rng = random.Random(seed)
    query = JoinQuery(
        [Atom("R1", ("h", "a")), Atom("R2", ("h", "b")), Atom("R3", ("h", "c"))]
    )
    db = Database(
        [
            Relation(name, ("h", var),
                     [(rng.randrange(domain), rng.randrange(10)) for _ in range(rows)])
            for name, var in (("R1", "a"), ("R2", "b"), ("R3", "c"))
        ]
    )
    return query, db


def satisfying_weights(query, db, ranking, predicate):
    return sorted(
        w for w in (ranking.weight_of(a) for a in query.answers_brute_force(db))
        if predicate.holds(w)
    )


def check_lossy_guarantee(query, db, ranking, predicate, epsilon, result):
    """Definition 3.5: injection into the satisfying answers, losing ≤ ε of them."""
    kept = [
        ranking.weight_of(a)
        for a in result.query.answers_brute_force(result.database)
    ]
    satisfying = satisfying_weights(query, db, ranking, predicate)
    # Injection: every kept answer satisfies the predicate ...
    for weight in kept:
        assert predicate.holds(weight)
    # ... and kept answers are a sub-multiset of the satisfying ones.
    assert len(kept) <= len(satisfying)
    remaining = list(satisfying)
    for weight in sorted(kept):
        assert weight in remaining
        remaining.remove(weight)
    # Retention: at least (1 - ε) of the satisfying answers survive.
    assert len(kept) >= (1 - epsilon) * len(satisfying) - 1e-9


class TestRejections:
    def test_requires_sum_ranking(self):
        with pytest.raises(TrimmingError):
            LossySumTrimmer(MaxRanking(["x1"]), epsilon=0.1)

    def test_epsilon_range(self):
        with pytest.raises(TrimmingError):
            LossySumTrimmer(SumRanking(["x1"]), epsilon=0.0)
        with pytest.raises(TrimmingError):
            LossySumTrimmer(SumRanking(["x1"]), epsilon=1.0)

    def test_budget_values(self):
        with pytest.raises(TrimmingError):
            LossySumTrimmer(SumRanking(["x1"]), epsilon=0.2, budget="extreme")


class TestPaperFigure4:
    """Figure 4 / Example 6.4: a 2-relation instance where sketching merges sums."""

    def setup_method(self):
        self.query = JoinQuery([Atom("S", ("x", "y")), Atom("R", ("y", "z"))])
        self.db = Database(
            [
                Relation("S", ("x", "y"), [(2, 1), (3, 1), (4, 1)]),
                Relation("R", ("y", "z"), [(1, 6)]),
            ]
        )
        self.ranking = SumRanking(["x", "y", "z"])

    def test_trim_keeps_only_satisfying_answers(self):
        # Sums of x+y+z: 9, 10, 11.  Trim < 11 with a coarse epsilon.
        trimmer = LossySumTrimmer(self.ranking, epsilon=0.4)
        predicate = RankPredicate(Comparison.LT, 11)
        result = trimmer.trim(self.query, self.db, predicate)
        check_lossy_guarantee(self.query, self.db, self.ranking, predicate, 0.4, result)

    def test_helper_column_added_to_both_relations(self):
        trimmer = LossySumTrimmer(self.ranking, epsilon=0.4)
        result = trimmer.trim(self.query, self.db, RankPredicate(Comparison.LT, 11))
        assert len(result.helper_variables) == 1
        helper = next(iter(result.helper_variables))
        for atom in result.query:
            assert helper in atom.variable_set
        assert result.lossy

    def test_exactness_with_tiny_epsilon(self):
        """With a very small ε every bucket is a singleton, so nothing is lost."""
        trimmer = LossySumTrimmer(self.ranking, epsilon=0.001)
        predicate = RankPredicate(Comparison.LT, 11)
        result = trimmer.trim(self.query, self.db, predicate)
        kept = sorted(
            self.ranking.weight_of(a)
            for a in result.query.answers_brute_force(result.database)
        )
        assert kept == satisfying_weights(self.query, self.db, self.ranking, predicate)


class TestGuarantees:
    @pytest.mark.parametrize("comparison", [Comparison.LT, Comparison.LE, Comparison.GT, Comparison.GE])
    @pytest.mark.parametrize("epsilon", [0.05, 0.3])
    def test_three_path(self, comparison, epsilon):
        query, db = three_path_instance(seed=1)
        ranking = SumRanking(["x1", "x2", "x3", "x4"])
        trimmer = LossySumTrimmer(ranking, epsilon=epsilon)
        predicate = RankPredicate(comparison, 14)
        result = trimmer.trim(query, db, predicate)
        check_lossy_guarantee(query, db, ranking, predicate, epsilon, result)
        assert result.query.is_acyclic

    def test_star_query_multiple_children(self):
        query, db = star_instance(seed=2)
        ranking = SumRanking(["a", "b", "c"])
        trimmer = LossySumTrimmer(ranking, epsilon=0.25)
        predicate = RankPredicate(Comparison.LT, 15)
        result = trimmer.trim(query, db, predicate)
        check_lossy_guarantee(query, db, ranking, predicate, 0.25, result)

    def test_paper_budget_is_tighter(self):
        query, db = three_path_instance(seed=3)
        ranking = SumRanking(["x1", "x4"])
        practical = LossySumTrimmer(ranking, epsilon=0.3, budget="practical")
        paper = LossySumTrimmer(ranking, epsilon=0.3, budget="paper")
        assert paper.sketch_epsilon(query) < practical.sketch_epsilon(query)

    def test_counting_on_trimmed_instance_matches_enumeration(self):
        query, db = three_path_instance(seed=4)
        ranking = SumRanking(["x1", "x2", "x3", "x4"])
        trimmer = LossySumTrimmer(ranking, epsilon=0.2)
        result = trimmer.trim(query, db, RankPredicate(Comparison.LT, 16))
        assert count_answers(result.query, result.database) == len(
            result.query.answers_brute_force(result.database)
        )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=3000),
    threshold=st.integers(min_value=0, max_value=30),
    epsilon=st.sampled_from([0.1, 0.3, 0.6]),
    upper=st.booleans(),
)
def test_lossy_trim_property_random(seed, threshold, epsilon, upper):
    query, db = three_path_instance(seed=seed, rows=10, domain=3)
    ranking = SumRanking(["x1", "x2", "x3", "x4"])
    trimmer = LossySumTrimmer(ranking, epsilon=epsilon)
    predicate = RankPredicate(Comparison.LT if upper else Comparison.GT, threshold)
    result = trimmer.trim(query, db, predicate)
    check_lossy_guarantee(query, db, ranking, predicate, epsilon, result)
