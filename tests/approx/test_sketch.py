"""ε-sketch tests: compression and the Lemma 6.3 guarantee."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.approx.sketch import (
    Bucket,
    count_above,
    count_below,
    epsilon_sketch,
    sketch_count_above,
    sketch_count_below,
)


class TestBasics:
    def test_zero_epsilon_is_exact(self):
        items = [(3.0, 2), (1.0, 1), (2.0, 4)]
        buckets = epsilon_sketch(items, 0.0)
        assert len(buckets) == 3
        for threshold in (0.5, 1.5, 2.5, 3.5):
            assert sketch_count_below(buckets, threshold) == count_below(items, threshold)

    def test_zero_multiplicity_items_ignored(self):
        buckets = epsilon_sketch([(1.0, 0), (2.0, 3)], 0.5)
        assert len(buckets) == 1
        assert buckets[0].multiplicity == 3

    def test_empty_input(self):
        assert epsilon_sketch([], 0.5) == []

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            epsilon_sketch([(1.0, 1)], 1.0)
        with pytest.raises(ValueError):
            epsilon_sketch([(1.0, 1)], -0.1)

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            epsilon_sketch([(1.0, 1)], 0.5, direction="sideways")

    def test_buckets_partition_the_items(self):
        items = [(float(i % 7), 1 + i % 3) for i in range(40)]
        buckets = epsilon_sketch(items, 0.3)
        members = [m for bucket in buckets for m in bucket.members]
        assert sorted(members) == list(range(40))
        assert sum(b.multiplicity for b in buckets) == sum(m for _, m in items)

    def test_upper_representative_is_bucket_max(self):
        items = [(float(i), 1) for i in range(20)]
        for bucket in epsilon_sketch(items, 0.5, direction="upper"):
            values = [items[m][0] for m in bucket.members]
            assert bucket.representative == max(values)

    def test_lower_representative_is_bucket_min(self):
        items = [(float(i), 1) for i in range(20)]
        for bucket in epsilon_sketch(items, 0.5, direction="lower"):
            values = [items[m][0] for m in bucket.members]
            assert bucket.representative == min(values)

    def test_bucket_is_frozen_dataclass(self):
        bucket = Bucket(1.0, 2, (0,))
        with pytest.raises(AttributeError):
            bucket.multiplicity = 5


class TestCompression:
    def test_logarithmic_bucket_count(self):
        rng = random.Random(0)
        items = [(rng.random() * 100, rng.randrange(1, 4)) for _ in range(5000)]
        total = sum(m for _, m in items)
        for epsilon in (0.5, 0.25, 0.1):
            buckets = epsilon_sketch(items, epsilon)
            bound = 2 + math.log(total) / math.log(1 + epsilon)
            assert len(buckets) <= bound

    def test_heavy_single_item_gets_own_bucket(self):
        items = [(1.0, 1), (2.0, 1_000_000), (3.0, 1)]
        buckets = epsilon_sketch(items, 0.5)
        # The heavy item cannot be split; counts below 2.0 and below 3.0 stay exact
        # relative to the guarantee.
        assert sketch_count_below(buckets, 2.0) <= count_below(items, 2.0)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.tuples(
            st.floats(min_value=-1000, max_value=1000, allow_nan=False),
            st.integers(min_value=1, max_value=20),
        ),
        min_size=1,
        max_size=200,
    ),
    epsilon=st.sampled_from([0.05, 0.1, 0.3, 0.5, 0.9]),
    threshold=st.floats(min_value=-1100, max_value=1100, allow_nan=False),
)
def test_guarantee_upper_direction(values, epsilon, threshold):
    """(1 - ε)·↓λ(L) ≤ ↓λ(S_ε(L)) ≤ ↓λ(L) for every λ (Lemma 6.3)."""
    buckets = epsilon_sketch(values, epsilon, direction="upper")
    exact = count_below(values, threshold)
    approx = sketch_count_below(buckets, threshold)
    assert approx <= exact
    assert approx >= (1 - epsilon) * exact - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.tuples(
            st.floats(min_value=-1000, max_value=1000, allow_nan=False),
            st.integers(min_value=1, max_value=20),
        ),
        min_size=1,
        max_size=200,
    ),
    epsilon=st.sampled_from([0.05, 0.1, 0.3, 0.5]),
    threshold=st.floats(min_value=-1100, max_value=1100, allow_nan=False),
)
def test_guarantee_lower_direction(values, epsilon, threshold):
    """The symmetric guarantee for counts above λ (used by > trims)."""
    buckets = epsilon_sketch(values, epsilon, direction="lower")
    exact = count_above(values, threshold)
    approx = sketch_count_above(buckets, threshold)
    assert approx <= exact
    assert approx >= (1 - epsilon) * exact - 1e-9
