"""Scaled-down smoke tests of every benchmark experiment.

Each experiment is executed with tiny parameters so the whole file stays
fast; the assertions check the *shape* of the output (the claims the full
benchmark reproduces), not absolute timings.
"""

from repro.bench import ablations, experiments


class TestExactScalingExperiments:
    def test_e1_shape(self):
        result = experiments.run_e1(sizes=(60, 120), seed=1)
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["strategy"] == "exact-pivot"
            assert row["weight"] == row["baseline_weight"]
        assert result.notes

    def test_e1b_shape(self):
        result = experiments.run_e1_min(sizes=(50,), seed=1)
        assert result.rows[0]["weight"] == result.rows[0]["baseline_weight"]

    def test_e2_shape(self):
        result = experiments.run_e2(sizes=(60,), seed=2)
        row = result.rows[0]
        assert row["strategy"] == "exact-pivot"
        assert row["weight"] == row["baseline_weight"]

    def test_e3_shape(self):
        result = experiments.run_e3(sizes=(60,), seed=3)
        row = result.rows[0]
        assert row["weight"] == row["baseline_weight"]

    def test_e4_shape(self):
        result = experiments.run_e4(sizes=(80,), seed=4)
        row = result.rows[0]
        assert row["weight"] == row["baseline_weight"]

    def test_e9_shape(self):
        result = experiments.run_e9(sizes=(120,), seed=5)
        row = result.rows[0]
        assert row["strategy"] == "exact-pivot"
        assert row["weight"] == row["baseline_weight"]

    def test_e10_shape(self):
        result = experiments.run_e10(fanouts=(2, 10), n=150, seed=6)
        assert [row["fanout"] for row in result.rows] == [2, 10]
        assert result.rows[1]["blowup"] > result.rows[0]["blowup"]

    def test_e12_shape(self):
        result = experiments.run_e12(sizes=(120,), num_phis=8, seed=7)
        row = result.rows[0]
        assert row["phis"] == 8
        # run_e12 itself asserts prepared-batch answers equal the cold ones;
        # no timing assertion here — wall-clock ratios are too noisy at smoke
        # scale (the >= 2x acceptance bar is checked at full benchmark scale).
        assert row["speedup"] > 0
        assert row["pivot_cache_entries"] > 0
        assert result.notes

    def test_e14_shape(self):
        result = experiments.run_e14(n=120, epsilon=0.3, seed=11)
        assert [row["mode"] for row in result.rows] == [
            "exact", "budget/degrade", "budget/sampling",
        ]
        assert not result.rows[0]["degraded"]
        for row in result.rows:
            # exact rows have error 0; degraded rows ride the paper's
            # approximation guarantees, so epsilon bounds them either way.
            assert row["rank_error"] <= 0.3
        assert result.meta["budget"]["timeout"] > 0
        assert "degradation" in result.meta
        # No degradation assertion at smoke scale: with a tiny n the exact
        # run can fit the deadline floor; bench_e14_degradation.py enforces
        # the degraded-within-2x acceptance bar at full scale.
        assert result.notes

    def test_e13_shape(self):
        result = experiments.run_e13(sizes=(100,), num_phis=5, seed=9)
        assert [row["workload"] for row in result.rows] == ["path", "star"]
        for row in result.rows:
            assert row["phis"] == 5
            # run_e13 itself asserts warm answers equal the cold ones; no
            # timing assertion at smoke scale (the >= 1.5x acceptance bar is
            # enforced by benchmarks/bench_e13_index_reuse.py).
            assert row["speedup"] > 0
            assert row["tree_hits"] > 0
        assert result.notes


class TestApproximationExperiments:
    def test_e5_errors_within_epsilon(self):
        result = experiments.run_e5(sizes=(50,), epsilon=0.3, seed=7)
        row = result.rows[0]
        assert row["approx_rank_error"] <= 0.3
        assert row["sampling_rank_error"] <= 0.3

    def test_e6_within_epsilon(self):
        result = experiments.run_e6(epsilons=(0.4, 0.2), n=60, seed=8)
        assert all(row["within_epsilon"] for row in result.rows)

    def test_e7_deterministic_errors_bounded(self):
        result = experiments.run_e7(epsilons=(0.3,), n=50, phis=(0.5,), seed=9)
        for row in result.rows:
            assert row["deterministic_error"] <= row["epsilon"]


class TestMicroExperiments:
    def test_e8_pivot_balance(self):
        result = experiments.run_e8(sizes=(60,), seed=10)
        for row in result.rows:
            assert row["observed_below_fraction"] >= row["guaranteed_c"]
            assert row["observed_above_fraction"] >= row["guaranteed_c"]

    def test_e11_sketch(self):
        result = ablations.run_e11(epsilons=(0.5, 0.1), multiset_size=800, seed=11)
        for row in result.rows:
            assert row["within_epsilon"]
            assert row["buckets"] <= row["log_bound"]

    def test_a1_budgets(self):
        result = ablations.run_a1(n=40, epsilon=0.4, seed=12)
        budgets = {row["budget"] for row in result.rows}
        assert budgets == {"practical", "paper"}
        for row in result.rows:
            assert row["within_epsilon"]

    def test_a2_variants_agree(self):
        result = ablations.run_a2(n=120, seed=13)
        answers = {row["answers"] for row in result.rows}
        assert len(answers) == 1  # both variants represent the same answer set

    def test_a3_phi_sweep(self):
        result = ablations.run_a3(phis=(0.1, 0.9), n=100, seed=14)
        assert len(result.rows) == 2

    def test_a4_c_decreases_with_width(self):
        result = ablations.run_a4(arms=(2, 3), n=80, seed=15)
        assert result.rows[0]["guaranteed_c"] > result.rows[1]["guaranteed_c"]
