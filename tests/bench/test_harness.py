"""Benchmark harness utilities and a smoke test of the experiment registry."""

import math

import pytest

from repro.bench.harness import (
    ExperimentResult,
    growth_exponent,
    observed_rank_error,
    rank_of_weight,
    time_call,
)
import json

from repro.bench.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.bench.reporting import (
    format_table,
    format_value,
    result_to_dict,
    write_json_report,
)


class TestTimeCall:
    def test_returns_result_and_positive_time(self):
        result, elapsed = time_call(lambda: sum(range(1000)))
        assert result == 499500
        assert elapsed >= 0


class TestGrowthExponent:
    def test_linear(self):
        sizes = [100, 200, 400, 800]
        times = [0.01 * n for n in sizes]
        assert growth_exponent(sizes, times) == pytest.approx(1.0, abs=0.01)

    def test_quadratic(self):
        sizes = [100, 200, 400, 800]
        times = [1e-6 * n * n for n in sizes]
        assert growth_exponent(sizes, times) == pytest.approx(2.0, abs=0.01)

    def test_degenerate(self):
        assert math.isnan(growth_exponent([100], [0.1]))


class TestRankError:
    def test_exact_hit(self):
        weights = [1, 2, 2, 3, 4]
        assert observed_rank_error(weights, 2, 1) == 0.0
        assert observed_rank_error(weights, 2, 2) == 0.0

    def test_miss_distance(self):
        weights = [1, 2, 3, 4, 5]
        assert observed_rank_error(weights, 5, 0) == pytest.approx(4 / 5)
        assert observed_rank_error(weights, 1, 4) == pytest.approx(4 / 5)

    def test_rank_of_weight_tie_range(self):
        assert rank_of_weight([1, 2, 2, 2, 3], 2) == (1, 3)


class TestReporting:
    def test_format_value(self):
        assert format_value(None) == "-"
        assert format_value(True) == "yes"
        assert format_value(0.123456) == "0.1235"
        assert format_value("abc") == "abc"

    def test_format_table(self):
        result = ExperimentResult(
            experiment="T0",
            title="demo",
            claim="none",
            columns=["a", "b"],
            rows=[{"a": 1, "b": 2.5}, {"a": 10, "b": None}],
            notes=["a note"],
        )
        text = format_table(result)
        assert "T0" in text and "a note" in text and "demo" in text
        assert result.column_values("a") == [1, 10]


class TestJsonReport:
    def make_result(self):
        return ExperimentResult(
            experiment="T1",
            title="demo",
            claim="none",
            columns=["a", "b"],
            rows=[{"a": 1, "b": 2.5}],
            notes=["a note"],
        )

    def test_result_to_dict_roundtrips_table(self):
        payload = result_to_dict(self.make_result())
        assert payload["experiment"] == "T1"
        assert payload["rows"] == [{"a": 1, "b": 2.5}]
        assert payload["notes"] == ["a note"]
        assert "python" in payload["environment"]

    def test_write_json_report_canonical_name(self, tmp_path):
        target = write_json_report(self.make_result(), tmp_path)
        assert target == tmp_path / "BENCH_t1.json"
        payload = json.loads(target.read_text())
        assert payload["columns"] == ["a", "b"]

    def test_write_json_report_explicit_file(self, tmp_path):
        target = write_json_report(self.make_result(), tmp_path / "out.json")
        assert target.name == "out.json"
        assert json.loads(target.read_text())["experiment"] == "T1"


class TestRegistry:
    def test_every_experiment_registered(self):
        expected = {"E1", "E1b", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9",
                    "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17",
                    "A1", "A2", "A3", "A4"}
        assert expected == set(EXPERIMENTS)

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("e1") is EXPERIMENTS["E1"][0]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_run_tiny_experiment(self):
        result = run_experiment("E11", multiset_size=500, epsilons=(0.5,))
        assert result.experiment == "E11"
        assert result.rows and result.rows[0]["within_epsilon"]
