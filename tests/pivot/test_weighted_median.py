"""Unit and property tests for weighted median selection."""

import pytest
from hypothesis import given, strategies as st

from repro.pivot.weighted_median import weighted_median


def expand(items, multiplicities):
    expanded = []
    for item, mult in zip(items, multiplicities):
        expanded.extend([item] * mult)
    return sorted(expanded)


class TestWeightedMedian:
    def test_uniform_multiplicities(self):
        assert weighted_median([5, 1, 3], [1, 1, 1], key=lambda x: x) == 3

    def test_multiplicities_shift_the_median(self):
        # Expansion: [a, b, c, c, c, c, c] -> position 3 is 'c'.
        assert weighted_median(["a", "b", "c"], [1, 1, 5], key=lambda s: s) == "c"

    def test_single_element(self):
        assert weighted_median([42], [3], key=lambda x: x) == 42

    def test_zero_multiplicities_ignored(self):
        assert weighted_median([1, 100], [3, 0], key=lambda x: x) == 1

    def test_all_zero_multiplicities_rejected(self):
        with pytest.raises(ValueError):
            weighted_median([1, 2], [0, 0], key=lambda x: x)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_median([1, 2], [1], key=lambda x: x)

    def test_custom_key(self):
        items = [{"w": 5}, {"w": 1}, {"w": 3}]
        assert weighted_median(items, [1, 1, 1], key=lambda d: d["w"]) == {"w": 3}

    def test_even_total_uses_lower_median(self):
        # Expansion [1, 2, 3, 4]: position (4 - 1) // 2 = 1 -> value 2.
        assert weighted_median([1, 2, 3, 4], [1, 1, 1, 1], key=lambda x: x) == 2

    def test_ties_return_some_tied_element(self):
        result = weighted_median([7, 7, 7, 1], [1, 1, 1, 1], key=lambda x: x)
        assert result == 7


@given(
    values=st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=30),
    multiplicities=st.data(),
)
def test_matches_naive_expansion(values, multiplicities):
    mults = [
        multiplicities.draw(st.integers(min_value=0, max_value=6)) for _ in values
    ]
    if sum(mults) == 0:
        mults[0] = 1
    result = weighted_median(values, mults, key=lambda x: x)
    expanded = expand(values, mults)
    expected = expanded[(len(expanded) - 1) // 2]
    # The returned element must have the same key as the naive answer
    # (several input items may carry that key).
    assert result == expected
