"""Tests for the generic pivot selection algorithm (Algorithm 2, Section 4)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.database import Database
from repro.data.relation import Relation
from repro.exceptions import EmptyResultError
from repro.pivot.pivot_selection import select_pivot
from repro.query.atom import Atom
from repro.query.join_query import JoinQuery
from repro.ranking.lex import LexRanking
from repro.ranking.minmax import MaxRanking, MinRanking
from repro.ranking.sum import SumRanking

from tests.conftest import brute_force_weights


def assert_c_pivot(query, db, ranking, pivot):
    """Check Definition 3.1 directly against the brute-force answer list."""
    assert query.satisfies(pivot.assignment, db)
    weights = brute_force_weights(query, db, ranking)
    total = len(weights)
    assert pivot.total_answers == total
    below = sum(1 for w in weights if w <= pivot.weight)
    above = sum(1 for w in weights if w >= pivot.weight)
    assert below >= pivot.c * total - 1e-9
    assert above >= pivot.c * total - 1e-9
    assert 0 < pivot.c <= 0.5


def test_paper_figure2(figure1_query, figure1_db):
    """Figure 2: under full SUM, the pivot computed for the R-tuple (1,1) side
    leads to the overall pivot x1=1, x2=1, x3=4, x4=6, x5=8 (weight 20)."""
    ranking = SumRanking(["x1", "x2", "x3", "x4", "x5"])
    pivot = select_pivot(figure1_query, figure1_db, ranking)
    assert figure1_query.satisfies(pivot.assignment, figure1_db)
    assert pivot.total_answers == 13
    # The weighted-median chain of Figure 2 produces the answer with sum 20.
    assert pivot.assignment == {"x1": 1, "x2": 1, "x3": 4, "x4": 6, "x5": 8}
    assert pivot.weight == 20.0
    assert_c_pivot(figure1_query, figure1_db, ranking, pivot)


def test_single_relation_median():
    query = JoinQuery([Atom("R", ("x",))])
    db = Database([Relation("R", ("x",), [(v,) for v in (5, 1, 9, 3, 7)])])
    pivot = select_pivot(query, db, SumRanking(["x"]))
    assert pivot.weight == 5.0  # the true median
    assert pivot.c == 0.5


def test_empty_result_raises(figure1_query, figure1_db):
    figure1_db.replace(Relation("U", ("x4", "x5"), []))
    with pytest.raises(EmptyResultError):
        select_pivot(figure1_query, figure1_db, SumRanking(["x1"]))


def test_pivot_validity_all_rankings(three_path):
    query, db = three_path
    rankings = [
        SumRanking(["x1", "x2", "x3", "x4"]),
        SumRanking(["x1", "x2"]),
        MinRanking(["x1", "x4"]),
        MaxRanking(["x1", "x4"]),
        LexRanking(["x4", "x1"]),
    ]
    for ranking in rankings:
        pivot = select_pivot(query, db, ranking)
        assert_c_pivot(query, db, ranking, pivot)


def test_dangling_tuples_never_become_pivots():
    query = JoinQuery([Atom("R", ("x", "y")), Atom("S", ("y", "z"))])
    db = Database(
        [
            # (0, 99) dangles: there is no S-tuple with y=99.
            Relation("R", ("a", "b"), [(0, 99), (5, 1), (6, 1)]),
            Relation("S", ("a", "b"), [(1, 2), (1, 3)]),
        ]
    )
    pivot = select_pivot(query, db, SumRanking(["x", "y", "z"]))
    assert pivot.assignment["y"] == 1
    assert query.satisfies(pivot.assignment, db)


def test_guaranteed_c_depends_only_on_query_shape():
    rng = random.Random(0)
    query = JoinQuery([Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3"))])
    cs = []
    for size in (10, 40, 160):
        db = Database(
            [
                Relation("R1", ("x1", "x2"),
                         [(rng.randrange(50), rng.randrange(5)) for _ in range(size)]),
                Relation("R2", ("x2", "x3"),
                         [(rng.randrange(5), rng.randrange(50)) for _ in range(size)]),
            ]
        )
        cs.append(select_pivot(query, db, SumRanking(["x1", "x3"])).c)
    assert len(set(cs)) == 1  # independent of the data size


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rows=st.integers(min_value=1, max_value=12),
    domain=st.integers(min_value=1, max_value=4),
)
def test_c_pivot_property_on_random_paths(seed, rows, domain):
    """On random 3-path instances the returned pivot always satisfies
    Definition 3.1 with the returned c."""
    rng = random.Random(seed)
    query = JoinQuery(
        [Atom("R1", ("x1", "x2")), Atom("R2", ("x2", "x3")), Atom("R3", ("x3", "x4"))]
    )
    db = Database(
        [
            Relation(
                f"R{i}", (f"x{i}", f"x{i+1}"),
                [(rng.randrange(domain * 10), rng.randrange(domain)) if i < 3
                 else (rng.randrange(domain), rng.randrange(domain * 10))
                 for _ in range(rows)],
            )
            for i in (1, 2, 3)
        ]
    )
    ranking = SumRanking(["x1", "x2", "x3", "x4"])
    try:
        pivot = select_pivot(query, db, ranking)
    except EmptyResultError:
        assert len(query.answers_brute_force(db)) == 0
        return
    assert_c_pivot(query, db, ranking, pivot)
