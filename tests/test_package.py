"""Package-level tests: public API surface, version, and example scripts."""

import importlib
import runpy
import sys
from pathlib import Path

import pytest

import repro

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), f"missing export {name}"

    def test_core_workflow_through_top_level_names(self):
        db = repro.Database(
            [
                repro.Relation("R", ("x", "y"), [(i, i % 3) for i in range(12)]),
                repro.Relation("S", ("y", "z"), [(i % 3, i) for i in range(12)]),
            ]
        )
        query = repro.JoinQuery([repro.Atom("R", ("x", "y")), repro.Atom("S", ("y", "z"))])
        result = repro.quantile(query, db, repro.SumRanking(["x", "z"]), 0.5)
        assert result.exact

    def test_exceptions_form_a_hierarchy(self):
        for name in (
            "SchemaError",
            "QueryError",
            "CyclicQueryError",
            "EmptyResultError",
            "RankingError",
            "TrimmingError",
            "IntractableQueryError",
            "SolverError",
        ):
            assert issubclass(getattr(repro, name), repro.ReproError)

    def test_submodules_importable(self):
        for module in (
            "repro.data",
            "repro.query",
            "repro.ranking",
            "repro.joins",
            "repro.pivot",
            "repro.trim",
            "repro.approx",
            "repro.core",
            "repro.baselines",
            "repro.workloads",
            "repro.bench",
        ):
            assert importlib.import_module(module)


class TestDocstrings:
    def test_every_public_module_has_a_docstring(self):
        import pkgutil

        package = importlib.import_module("repro")
        for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            assert module.__doc__, f"module {info.name} lacks a docstring"


@pytest.mark.parametrize("script", ["dichotomy_explorer.py"])
def test_examples_run(script, capsys, monkeypatch):
    """The lightweight example scripts run end to end (heavier ones are
    exercised indirectly through the workload and solver tests)."""
    path = EXAMPLES_DIR / script
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    captured = capsys.readouterr()
    assert "tractable" in captured.out
